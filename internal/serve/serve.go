package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"mhmgo/internal/core"
	"mhmgo/internal/pgas"
)

// Job lifecycle states. The state machine is strictly forward:
//
//	queued ──> running ──> done | failed | cancelled
//	  │
//	  └──────> cancelled | timeout          (never granted a slot)
//
// plus the submit-time rejections that never create a job at all (invalid
// spec -> 400, duplicate ID -> 409, queue full -> 429).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
	StateTimeout   = "timeout"
)

// terminalState reports whether a job in the given state will never change
// again (its events stream is complete and its worker slots are released).
func terminalState(state string) bool {
	return state != StateQueued && state != StateRunning
}

// Event is one entry of a job's progress stream: either a lifecycle state
// transition or a completed pipeline stage. Events are delivered in order
// with a dense per-job sequence number, so a reconnecting client can detect
// gaps.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state" or "stage"

	// State transitions ("state" events).
	State string `json:"state,omitempty"`
	// Error carries the failure (or cancellation) cause on terminal states.
	Error string `json:"error,omitempty"`

	// Completed pipeline stages ("stage" events, see core.ProgressEvent).
	Stage         string  `json:"stage,omitempty"`
	Iteration     int     `json:"iteration,omitempty"`
	K             int     `json:"k,omitempty"`
	SimSeconds    float64 `json:"sim_seconds,omitempty"`
	ResidentBytes uint64  `json:"resident_bytes,omitempty"`
}

// DecodeEvent parses one progress event from its JSON encoding, rejecting
// structurally invalid events (unknown type, negative sequence, trailing
// data) with an error — never a panic. Valid events round-trip: encoding the
// result reproduces the canonical form.
func DecodeEvent(data []byte) (Event, error) {
	var ev Event
	if err := strictUnmarshal(data, &ev); err != nil {
		return Event{}, err
	}
	if ev.Type != "state" && ev.Type != "stage" {
		return Event{}, fmt.Errorf("serve: event type %q is neither \"state\" nor \"stage\"", ev.Type)
	}
	if ev.Seq < 0 {
		return Event{}, fmt.Errorf("serve: negative event seq %d", ev.Seq)
	}
	if ev.Iteration < 0 || ev.K < 0 {
		return Event{}, fmt.Errorf("serve: negative stage coordinates (%d, %d)", ev.Iteration, ev.K)
	}
	return ev, nil
}

// Submission errors. SpecError (invalid spec) is defined in spec.go.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity: backpressure, HTTP 429 + Retry-After.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDuplicateID rejects a submission reusing a live or finished job ID.
	ErrDuplicateID = errors.New("serve: duplicate job id")
	// ErrServerClosed rejects submissions after Close.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrUnknownJob is returned for lookups of IDs never submitted.
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrJobCancelled is the cancellation cause delivered to a running
	// job's context (and, through it, to pgas.Machine.Abort).
	ErrJobCancelled = errors.New("serve: job cancelled")
	// ErrQueueTimeout marks a job that waited longer than its queue-wait
	// budget without ever being granted worker slots.
	ErrQueueTimeout = errors.New("serve: queue wait timeout")
)

// Options configures a Server.
type Options struct {
	// TotalWorkers is the server-wide worker-slot budget shared by all
	// concurrently running jobs; each job holds its requested Workers slots
	// from dispatch to completion. Defaults to GOMAXPROCS.
	TotalWorkers int
	// MaxQueue bounds the admission queue (jobs admitted but not yet
	// running); submissions beyond it are rejected with ErrQueueFull.
	// Defaults to 64.
	MaxQueue int
	// QueueTimeout bounds how long a job may wait for worker slots before
	// it is expired with StateTimeout. Defaults to 60s; jobs may shorten
	// (or lengthen) it per-spec via QueueTimeoutMS. Negative disables.
	QueueTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.TotalWorkers <= 0 {
		o.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.QueueTimeout == 0 {
		o.QueueTimeout = 60 * time.Second
	}
	return o
}

// Server is the multi-tenant assembly job server: an admission-controlled
// priority queue in front of a bounded worker-slot budget, with every job
// running core.AssembleContext on its own pgas machine. Server implements
// http.Handler (see http.go for the API surface); it is also usable
// directly through Submit/Cancel/Job for in-process embedding and tests.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu          sync.Mutex
	jobs        map[string]*Job
	jobList     []*Job // submission order, for listing and CSV export
	queue       []*Job // admitted, waiting for slots
	freeWorkers int
	nextID      int64
	seq         int64
	closed      bool

	// runFn executes one dispatched job; tests replace it to exercise the
	// admission controller without real assemblies. The default builds the
	// job's reads and runs core.AssembleContext.
	runFn func(ctx context.Context, j *Job) (*core.Result, error)
	// onStage, when non-nil, observes every stage event synchronously on
	// the reporting rank's goroutine (a test seam: TestCancelMidStage uses
	// it to cancel a job deterministically mid-pipeline). Must be set
	// before any job is submitted.
	onStage func(j *Job, ev core.ProgressEvent)
}

// New creates a Server with the given options.
func New(opts Options) *Server {
	s := &Server{
		opts: opts.withDefaults(),
		jobs: make(map[string]*Job),
	}
	s.freeWorkers = s.opts.TotalWorkers
	s.runFn = s.assembleJob
	s.initMux()
	return s
}

// Job is one submitted assembly. All mutable fields are guarded by the
// server's mutex; accessors take snapshots.
type Job struct {
	s    *Server
	spec JobSpec
	cfg  core.Config
	seq  int64 // admission order within the server

	state     string
	cancelled bool // cancellation requested (queued or running)
	cancel    context.CancelCauseFunc
	timer     *time.Timer // queue-wait expiry; nil once running
	events    []Event
	updated   chan struct{} // closed and replaced on every event append
	done      chan struct{} // closed when the job reaches a terminal state

	submitted, started, finished time.Time

	result *core.Result
	fasta  []byte
	err    error
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.spec.ID }

// Spec returns the job's normalized spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Config returns the assembly configuration the job runs with.
func (j *Job) Config() core.Config { return j.cfg }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.state
}

// Err returns the terminal error of a failed, cancelled or timed-out job.
func (j *Job) Err() error {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.err
}

// Result returns the assembly result of a done job (nil otherwise).
func (j *Job) Result() *core.Result {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.result
}

// FASTA returns the rendered assembly output of a done job (nil otherwise).
func (j *Job) FASTA() []byte {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.fasta
}

// Events returns a snapshot of the job's event log from seq from onward,
// plus the channel that will be closed when more events arrive.
func (j *Job) Events(from int) (evs []Event, updated <-chan struct{}, terminal bool) {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.updated, terminalState(j.state)
}

// Metrics returns the job's flat metrics snapshot.
func (j *Job) Metrics() JobMetrics {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.metricsLocked(time.Now())
}

func (j *Job) metricsLocked(now time.Time) JobMetrics {
	m := JobMetrics{
		ID:           j.spec.ID,
		State:        j.state,
		Priority:     j.spec.Priority,
		Workers:      j.spec.Workers,
		Ranks:        j.spec.Ranks,
		SubmitUnixMS: j.submitted.UnixMilli(),
	}
	queueEnd, runEnd := j.started, j.finished
	if queueEnd.IsZero() {
		// Never started: queued until finish (timeout/cancel) or now.
		queueEnd = j.finished
		if queueEnd.IsZero() {
			queueEnd = now
		}
	}
	if runEnd.IsZero() {
		runEnd = now
	}
	m.QueueMS = queueEnd.Sub(j.submitted).Seconds() * 1e3
	if !j.started.IsZero() {
		m.RunMS = runEnd.Sub(j.started).Seconds() * 1e3
	}
	end := j.finished
	if end.IsZero() {
		end = now
	}
	m.TotalMS = end.Sub(j.submitted).Seconds() * 1e3
	if j.result != nil {
		m.SimSeconds = j.result.SimSeconds
		m.TotalReads = j.result.TotalReads
		m.Contigs = len(j.result.Contigs)
		m.Scaffolds = len(j.result.Scaffolds)
		m.ScaffoldN50 = j.result.ScaffoldStats.N50
		m.PeakResidentBytes = j.result.Stats.PeakResidentBytes
		m.BytesSent = j.result.Stats.BytesSent
		m.BytesReceived = j.result.Stats.BytesReceived
	}
	if j.err != nil {
		m.Error = j.err.Error()
	}
	return m
}

// Stats is the server-wide admission snapshot (the healthz body).
type Stats struct {
	TotalWorkers int `json:"total_workers"`
	FreeWorkers  int `json:"free_workers"`
	Queued       int `json:"queued"`
	Running      int `json:"running"`
	Done         int `json:"done"`
	Failed       int `json:"failed"`
	Cancelled    int `json:"cancelled"`
	TimedOut     int `json:"timed_out"`
}

// Stats returns the server-wide admission snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{TotalWorkers: s.opts.TotalWorkers, FreeWorkers: s.freeWorkers}
	for _, j := range s.jobList {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		case StateTimeout:
			st.TimedOut++
		}
	}
	return st
}

// Submit validates and admits a job. The spec is normalized first; errors
// are typed: *SpecError (invalid spec), ErrDuplicateID, ErrQueueFull,
// ErrServerClosed. On success the job is queued (and possibly already
// dispatched) and its ID is fixed.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Workers > s.opts.TotalWorkers {
		return nil, &SpecError{Field: "workers", Msg: fmt.Sprintf(
			"job requests %d worker slots but the server budget is %d: it could never be admitted", spec.Workers, s.opts.TotalWorkers)}
	}
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	if spec.ID == "" {
		s.nextID++
		spec.ID = fmt.Sprintf("job-%06d", s.nextID)
	}
	if _, dup := s.jobs[spec.ID]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateID, spec.ID)
	}
	if len(s.queue) >= s.opts.MaxQueue {
		return nil, ErrQueueFull
	}
	s.seq++
	j := &Job{
		s:         s,
		spec:      spec,
		cfg:       cfg,
		seq:       s.seq,
		state:     StateQueued,
		updated:   make(chan struct{}),
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	s.jobs[spec.ID] = j
	s.jobList = append(s.jobList, j)
	s.queue = append(s.queue, j)
	s.appendEventLocked(j, Event{Type: "state", State: StateQueued})
	if d := j.queueTimeout(s.opts.QueueTimeout); d > 0 {
		j.timer = time.AfterFunc(d, func() { s.expire(j) })
	}
	s.dispatchLocked()
	return j, nil
}

// queueTimeout resolves the job's queue-wait budget: the spec override when
// set, the server default otherwise (negative default = no timeout).
func (j *Job) queueTimeout(def time.Duration) time.Duration {
	if j.spec.QueueTimeoutMS > 0 {
		return time.Duration(j.spec.QueueTimeoutMS) * time.Millisecond
	}
	if def < 0 {
		return 0
	}
	return def
}

// RetryAfter estimates (in whole seconds, >= 1) how long a rejected client
// should wait before resubmitting: one second per queued job, a coarse but
// monotone backpressure signal.
func (s *Server) RetryAfter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 1 + len(s.queue)
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.jobList...)
}

// Cancel requests cancellation of a job. A queued job leaves the queue and
// terminates immediately; a running job's context is cancelled, which
// aborts its pgas machine (every rank unwinds at its next barrier) and
// releases its worker slots when the run returns. Cancelling a terminal job
// is a no-op. Returns the job, or ErrUnknownJob.
func (s *Server) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued:
		s.removeQueuedLocked(j)
		j.cancelled = true
		j.err = ErrJobCancelled
		s.terminalLocked(j, StateCancelled)
		// Removing a queued job can unblock dispatch: if it was the
		// head-of-line job too big for the free budget, the next job may fit.
		s.dispatchLocked()
	case StateRunning:
		j.cancelled = true
		if j.cancel != nil {
			j.cancel(ErrJobCancelled)
		}
	}
	return j, nil
}

// Close shuts the server down: pending queued jobs are cancelled, running
// jobs' contexts are cancelled, and Close blocks until every job reaches a
// terminal state. Subsequent submissions fail with ErrServerClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, j := range append([]*Job(nil), s.queue...) {
		s.removeQueuedLocked(j)
		j.cancelled = true
		j.err = ErrServerClosed
		s.terminalLocked(j, StateCancelled)
	}
	var running []*Job
	for _, j := range s.jobList {
		if j.state == StateRunning {
			j.cancelled = true
			if j.cancel != nil {
				j.cancel(ErrServerClosed)
			}
			running = append(running, j)
		}
	}
	s.mu.Unlock()
	for _, j := range running {
		<-j.Done()
	}
}

// expire is the queue-wait timer callback: a job still queued when its
// budget elapses is removed and terminated with StateTimeout — it never
// held worker slots, so nothing is released.
func (s *Server) expire(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	s.removeQueuedLocked(j)
	j.err = ErrQueueTimeout
	s.terminalLocked(j, StateTimeout)
	s.dispatchLocked()
}

// removeQueuedLocked takes a job out of the admission queue and stops its
// expiry timer.
func (s *Server) removeQueuedLocked(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
}

// terminalLocked moves a job into a terminal state: records the transition
// event (with the error cause, if any), stamps the finish time, and closes
// Done.
func (s *Server) terminalLocked(j *Job, state string) {
	j.state = state
	j.finished = time.Now()
	ev := Event{Type: "state", State: state}
	if j.err != nil {
		ev.Error = j.err.Error()
	}
	s.appendEventLocked(j, ev)
	close(j.done)
}

// appendEventLocked appends one event to the job's log and wakes every
// stream follower (the update channel is closed and replaced).
func (s *Server) appendEventLocked(j *Job, ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.updated)
	j.updated = make(chan struct{})
}

// jobLess orders the admission queue: interactive before batch, FIFO (by
// admission sequence) within a class.
func jobLess(a, b *Job) bool {
	pa, pb := priorityRank(a.spec.Priority), priorityRank(b.spec.Priority)
	if pa != pb {
		return pa < pb
	}
	return a.seq < b.seq
}

func priorityRank(p string) int {
	if p == PriorityInteractive {
		return 0
	}
	return 1
}

// dispatchLocked grants worker slots to queued jobs. The policy is strict
// priority-ordered head-of-line: the best queued job (interactive first,
// FIFO within class) dispatches if its requested slots fit in the free
// budget; if it does not fit, nothing behind it is considered — smaller
// jobs cannot overtake, so a large job can never be starved by a stream of
// small ones. Deterministic given the queue and budget.
func (s *Server) dispatchLocked() {
	for !s.closed {
		var best *Job
		for _, j := range s.queue {
			if best == nil || jobLess(j, best) {
				best = j
			}
		}
		if best == nil || best.spec.Workers > s.freeWorkers {
			return
		}
		s.removeQueuedLocked(best)
		s.freeWorkers -= best.spec.Workers
		best.state = StateRunning
		best.started = time.Now()
		s.appendEventLocked(best, Event{Type: "state", State: StateRunning})
		go s.run(best)
	}
}

// run executes one dispatched job on its own goroutine and returns its
// worker slots when it finishes (normally, by failure, or by abort).
func (s *Server) run(j *Job) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	s.mu.Lock()
	j.cancel = cancel
	if j.cancelled {
		// Cancellation raced the dispatch: poison the context before the
		// run begins so the machine aborts at its first barrier.
		cancel(ErrJobCancelled)
	}
	s.mu.Unlock()

	res, err := s.runFn(ctx, j)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.freeWorkers += j.spec.Workers
	switch {
	case err == nil:
		j.result = res
		j.fasta = renderFASTA(res)
		s.terminalLocked(j, StateDone)
	case j.cancelled && errors.Is(err, pgas.ErrAborted):
		j.err = err
		s.terminalLocked(j, StateCancelled)
	default:
		j.err = err
		s.terminalLocked(j, StateFailed)
	}
	s.dispatchLocked()
}

// assembleJob is the default runFn: materialize the job's reads, wire the
// progress stream, and run the pipeline under the job's context on its own
// virtual machine.
func (s *Server) assembleJob(ctx context.Context, j *Job) (*core.Result, error) {
	reads, err := j.spec.BuildReads()
	if err != nil {
		return nil, err
	}
	cfg := j.cfg
	cfg.Progress = func(ev core.ProgressEvent) {
		s.mu.Lock()
		s.appendEventLocked(j, Event{
			Type:          "stage",
			Stage:         ev.Stage,
			Iteration:     ev.Iteration,
			K:             ev.K,
			SimSeconds:    ev.SimSeconds,
			ResidentBytes: ev.ResidentBytes,
		})
		s.mu.Unlock()
		if s.onStage != nil {
			s.onStage(j, ev)
		}
	}
	return core.AssembleContext(ctx, reads, cfg)
}

// renderFASTA renders the assembly output exactly as cmd/mhm writes it:
// sequences named scaffold_NNNNNN, 80-column wrapped.
func renderFASTA(res *core.Result) []byte {
	seqs := res.FinalSequences()
	names := make([]string, len(seqs))
	for i := range seqs {
		names[i] = fmt.Sprintf("scaffold_%06d", i)
	}
	return RenderFASTA(names, seqs)
}
