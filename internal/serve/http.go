package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"mhmgo/internal/fastx"
)

// HTTP API surface:
//
//	POST   /v1/jobs             submit a JobSpec        -> 202 job snapshot
//	GET    /v1/jobs             list jobs               -> 200 [snapshots]
//	GET    /v1/jobs/{id}        one job                 -> 200 snapshot
//	DELETE /v1/jobs/{id}        cancel                  -> 200 snapshot
//	GET    /v1/jobs/{id}/events progress stream         -> 200 SSE (or NDJSON)
//	GET    /v1/jobs/{id}/fasta  assembly output         -> 200 FASTA (409 until done)
//	GET    /v1/metrics.csv      per-job metrics table   -> 200 CSV
//	GET    /v1/healthz          admission snapshot      -> 200 Stats JSON
//
// Submission failures map to: 400 (invalid spec, structured SpecError body),
// 409 (duplicate ID), 429 + Retry-After (queue full), 503 (server closed).

func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/fasta", s.handleFASTA)
	mux.HandleFunc("GET /v1/metrics.csv", s.handleMetricsCSV)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
	// Field is set for spec validation failures (the offending JSON field).
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error()}
	var se *SpecError
	if errors.As(err, &se) {
		body.Field = se.Field
	}
	writeJSON(w, status, body)
}

// jobSnapshot is the JSON view of one job: its normalized spec plus the
// flat metrics record (which carries state, timing, and assembly meters).
type jobSnapshot struct {
	Spec    JobSpec    `json:"spec"`
	Metrics JobMetrics `json:"metrics"`
}

func snapshot(j *Job) jobSnapshot {
	return jobSnapshot{Spec: j.Spec(), Metrics: j.Metrics()}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxInlineReadBytes+1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		var se *SpecError
		switch {
		case errors.As(err, &se):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrDuplicateID):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrServerClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, snapshot(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]jobSnapshot, len(jobs))
	for i, j := range jobs {
		out[i] = snapshot(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, snapshot(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshot(j))
}

// handleEvents streams the job's progress events. The default framing is
// Server-Sent Events (one `data: <json>` block per event); ?format=ndjson
// switches to newline-delimited JSON. The stream replays the full event log
// from the start (or ?from=N) and then follows live until the job reaches a
// terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from=%q", v))
			return
		}
		from = n
	}
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		evs, updated, terminal := j.Events(from)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if ndjson {
				fmt.Fprintf(w, "%s\n", data)
			} else {
				fmt.Fprintf(w, "data: %s\n\n", data)
			}
		}
		from += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleFASTA(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	state := j.State()
	if state != StateDone {
		status := http.StatusConflict
		writeError(w, status, fmt.Errorf("serve: job %q is %s, not done", j.ID(), state))
		return
	}
	w.Header().Set("Content-Type", "text/x-fasta")
	w.WriteHeader(http.StatusOK)
	w.Write(j.FASTA())
}

func (s *Server) handleMetricsCSV(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, MetricsCSVHeader())
	for _, j := range s.Jobs() {
		fmt.Fprintln(w, j.Metrics().CSVRow())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// RenderFASTA renders named sequences as 80-column FASTA text, the same
// layout cmd/mhm writes to disk.
func RenderFASTA(names []string, seqs [][]byte) []byte {
	var buf bytes.Buffer
	fw := fastx.NewWriter(&buf, fastx.FormatFASTA, 80)
	for i := range names {
		fw.Write(fastx.Record{ID: names[i], Seq: seqs[i]})
	}
	fw.Flush()
	return buf.Bytes()
}
