// Per-kernel benchmark harness: one benchmark per hot inner loop (alignment
// extension, de Bruijn graph walking, k-mer observation extraction), each
// comparing the packed 2-bit kernel against the ASCII byte-loop baseline it
// replaced. Timing is hand-rolled over a fixed iteration count rather than
// driven by b.N, so the CI bench-smoke run (`-benchtime 1x`) still produces
// real numbers; the measured ns/op, B/op and allocs/op land in
// BENCH_kernels.json so the kernel-level perf trajectory has a
// machine-readable data point per CI run. This root package is the only
// writer of the file — the per-package benchmarks in internal/... assert
// correctness (equivalence, zero allocations, speedup floors) but do not
// write artifacts, because `go test ./...` runs package binaries in
// parallel.
package mhmgo_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"mhmgo/internal/aligner"
	"mhmgo/internal/dbg"
	"mhmgo/internal/kmeranalysis"
	"mhmgo/internal/pgas"
	"mhmgo/internal/seq"
)

// kernelCost is one measured side (packed or ascii) of a kernel comparison.
type kernelCost struct {
	nsPerOp     float64
	bPerOp      float64
	allocsPerOp float64
}

// measureKernel times fn over a fixed iteration count with the allocation
// counters read before and after — the hand-rolled equivalent of a
// -benchmem benchmark that works at any -benchtime.
func measureKernel(iters int, fn func()) kernelCost {
	fn() // warm caches and scratch buffers outside the timed region
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return kernelCost{
		nsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		bPerOp:      float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		allocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
	}
}

// reportKernel merges one kernel's comparison into BENCH_kernels.json
// (read-modify-write: the three kernel benchmarks run sequentially inside
// this package's test binary) and mirrors the headline numbers as custom
// benchmark metrics.
func reportKernel(b *testing.B, key string, packed, ascii kernelCost) {
	report := map[string]any{}
	if data, err := os.ReadFile("BENCH_kernels.json"); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			report = map[string]any{}
		}
	}
	report[key] = map[string]any{
		"packed_ns_per_op":     packed.nsPerOp,
		"ascii_ns_per_op":      ascii.nsPerOp,
		"speedup_x":            ascii.nsPerOp / packed.nsPerOp,
		"packed_b_per_op":      packed.bPerOp,
		"ascii_b_per_op":       ascii.bPerOp,
		"packed_allocs_per_op": packed.allocsPerOp,
		"ascii_allocs_per_op":  ascii.allocsPerOp,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kernels.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(packed.nsPerOp, "packed_ns_per_op")
	b.ReportMetric(ascii.nsPerOp, "ascii_ns_per_op")
	b.ReportMetric(ascii.nsPerOp/packed.nsPerOp, "speedup_x")
	b.ReportMetric(packed.allocsPerOp, "packed_allocs_per_op")
}

func kernelRandBases(r *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seq.BaseToChar(byte(r.Intn(4)))
	}
	return out
}

// BenchmarkKernelAlignExtend measures seed extension: one op scores a
// forward and a reverse-strand candidate for one 100-base read against a
// 2000-base contig, the per-read setup amortized the way alignOne amortizes
// it. The packed side must stay allocation-free (the correctness floor is
// asserted by the aligner package's own BenchmarkKernelAlignExtend and
// TestExtendPackedSpeedup).
func BenchmarkKernelAlignExtend(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	contig := dbg.Contig{ID: 7, Seq: kernelRandBases(r, 2000)}
	readSeq := append([]byte(nil), contig.Seq[800:900]...)
	for i := 0; i < 3; i++ {
		readSeq[r.Intn(len(readSeq))] = seq.BaseToChar(byte(r.Intn(4)))
	}
	opts := aligner.DefaultOptions(31)
	hitF := aligner.SeedHit{ContigID: contig.ID, Pos: 816}
	hitR := aligner.SeedHit{ContigID: contig.ID, Pos: 820, Reverse: true}
	s := aligner.NewScratch()
	s.BeginRead(readSeq)
	for i := 0; i < b.N; i++ {
		packed := measureKernel(200_000, func() {
			aligner.ExtendKernel(readSeq, contig, hitF, 16, false, opts, s)
			aligner.ExtendKernel(readSeq, contig, hitR, 16, true, opts, s)
		})
		ascii := measureKernel(50_000, func() {
			aligner.ExtendKernelASCII(readSeq, contig, hitF, 16, false, opts)
			aligner.ExtendKernelASCII(readSeq, contig, hitR, 16, true, opts)
		})
		reportKernel(b, "align_extend", packed, ascii)
	}
}

// BenchmarkKernelDBGWalk measures de Bruijn graph traversal: one op walks
// one path (alternating orientations over a fixed vertex set) of a graph
// built from reads over a 600-base genome. The packed walk appends 2-bit
// codes into a reusable scratch and unpacks to ASCII only for emitted
// contigs; the ASCII baseline grows a byte slice per walk.
func BenchmarkKernelDBGWalk(b *testing.B) {
	const k = 21
	r := rand.New(rand.NewSource(51))
	var sb strings.Builder
	for i := 0; i < 600; i++ {
		sb.WriteByte(seq.BaseToChar(byte(r.Intn(4))))
	}
	genome := sb.String()
	var reads []seq.Read
	for start := 0; start+60 <= len(genome); start += 5 {
		for rep := 0; rep < 3; rep++ {
			reads = append(reads, seq.Read{Seq: []byte(genome[start : start+60])})
		}
	}
	m := pgas.NewMachine(pgas.Config{Ranks: 1})
	opts := kmeranalysis.DefaultOptions(k)
	opts.UseBloom = false
	for i := 0; i < b.N; i++ {
		m.Run(func(rk *pgas.Rank) {
			res := kmeranalysis.Run(rk, reads, opts, nil)
			g := dbg.Build(rk, res.Counts, k, dbg.DefaultThresholds())
			var vertices []seq.Kmer
			g.Entries.ForEachLocal(rk, func(km seq.Kmer, _ dbg.Entry) {
				vertices = append(vertices, km)
			})
			if len(vertices) == 0 {
				b.Fatal("fixture graph has no vertices")
			}
			maxSteps := g.Entries.Len() + 1
			ws := dbg.NewWalkScratch()
			var n int
			packed := measureKernel(5_000, func() {
				g.WalkKernel(rk, vertices[n%len(vertices)], n%2 == 0, maxSteps, ws)
				n++
			})
			n = 0
			ascii := measureKernel(5_000, func() {
				g.WalkKernelASCII(rk, vertices[n%len(vertices)], n%2 == 0, maxSteps)
				n++
			})
			reportKernel(b, "dbg_walk", packed, ascii)
		})
	}
}

// BenchmarkKernelKmerExtract measures k-mer observation extraction: one op
// converts one 150-base read into canonical k=21 observations. The rolling
// variant decodes each base once and maintains the forward and
// reverse-complement windows incrementally; the byte-loop baseline rebuilds
// the reverse complement per window and re-decodes neighbours from ASCII.
func BenchmarkKernelKmerExtract(b *testing.B) {
	r := rand.New(rand.NewSource(62))
	read := seq.Read{ID: "kernel", Seq: kernelRandBases(r, 150), Qual: make([]byte, 150)}
	for i := range read.Qual {
		read.Qual[i] = byte(33 + r.Intn(40))
	}
	opts := kmeranalysis.DefaultOptions(21)
	var dst []kmeranalysis.Observation
	var codes []byte
	for i := 0; i < b.N; i++ {
		packed := measureKernel(20_000, func() {
			dst, codes = kmeranalysis.AppendObservations(dst[:0], codes, read, opts)
		})
		ascii := measureKernel(20_000, func() {
			dst = kmeranalysis.AppendObservationsByteLoop(dst[:0], read, opts)
		})
		reportKernel(b, "kmer_extract", packed, ascii)
	}
}
