// Quickstart demonstrates the minimal library workflow from README.md:
// simulate a tiny metagenome, assemble it with the default MetaHipMer-Go
// pipeline on a virtual PGAS machine, and print quality metrics against the
// known references. Start here; TUTORIAL.md walks through the longer tour.
package main

import (
	"fmt"
	"log"

	"mhmgo"
)

func main() {
	// 1. Simulate a small community (8 genomes, log-normal abundances, a
	//    planted conserved rRNA-like region in each genome).
	commCfg := mhmgo.DefaultCommunityConfig()
	commCfg.NumGenomes = 6
	commCfg.MeanGenomeLen = 6000
	comm := mhmgo.SimulateCommunity(commCfg)

	readCfg := mhmgo.DefaultReadConfig()
	readCfg.Coverage = 15
	reads := mhmgo.SimulateReads(comm, readCfg)
	fmt.Printf("simulated %d genomes (%d bases) and %d paired-end reads\n",
		len(comm.Genomes), comm.TotalBases(), len(reads))

	// 2. Assemble on a virtual PGAS machine with 8 ranks across 2 nodes.
	cfg := mhmgo.DefaultConfig(8)
	cfg.RanksPerNode = 4
	cfg.InsertSize = readCfg.InsertSize
	cfg.RRNAProfile = mhmgo.BuildRRNAProfile([][]byte{comm.RRNAMarker}, 0.9)
	result, err := mhmgo.Assemble(reads, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembly: %d contigs, %d scaffolds, simulated parallel time %.3fs\n",
		len(result.Contigs), len(result.Scaffolds), result.SimSeconds)

	// 3. Evaluate against the known reference genomes.
	report := mhmgo.Evaluate("MetaHipMer-Go", result.FinalSequences(), comm)
	fmt.Printf("genome fraction: %.1f%%, misassemblies: %d, N50: %d\n",
		100*report.GenomeFraction, report.Misassemblies, report.N50)
	for _, g := range report.PerGenome {
		fmt.Printf("  %-12s fraction=%.2f NGA50=%d\n", g.Name, g.GenomeFraction, g.NGA50)
	}
}
