// Read_localization demonstrates the paper's Figure 3 ablation: run the
// pipeline with and without the read-localization optimization (Section
// II-I — redistribute reads onto the ranks owning the contigs they align
// to) and show its effect on the simulated time of the k-mer analysis and
// alignment stages as node counts grow.
package main

import (
	"fmt"

	"mhmgo/internal/core"
	"mhmgo/internal/sim"
)

func main() {
	comm := sim.MG64LikeCommunity(0.2, 11)
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen: 100, InsertSize: 280, InsertStd: 25, ErrorRate: 0.01, Coverage: 10, Seed: 12,
	})
	fmt.Printf("dataset: %d genomes, %d reads\n", len(comm.Genomes), len(reads))

	const ranksPerNode = 4
	fmt.Println("Nodes  align(on)  align(off)  speedup   kmer(on)  kmer(off)")
	for _, nodes := range []int{2, 4, 8} {
		stage := func(localize bool) (alignSecs, kmerSecs float64) {
			cfg := core.DefaultConfig(nodes * ranksPerNode)
			cfg.RanksPerNode = ranksPerNode
			cfg.ReadLocalization = localize
			cfg.Scaffolding = false
			res, err := core.Assemble(reads, cfg)
			if err != nil {
				return 0, 0
			}
			for _, st := range res.Stages {
				switch st.Name {
				case core.StageAlignment:
					alignSecs = st.Seconds
				case core.StageKmerAnalysis:
					kmerSecs = st.Seconds
				}
			}
			return alignSecs, kmerSecs
		}
		alignOn, kmerOn := stage(true)
		alignOff, kmerOff := stage(false)
		speedup := 0.0
		if alignOn > 0 {
			speedup = alignOff / alignOn
		}
		fmt.Printf("%-6d %-10.4f %-11.4f %-8.2fx %-9.4f %-9.4f\n",
			nodes, alignOn, alignOff, speedup, kmerOn, kmerOff)
	}
}
