// Wetlands_scaling demonstrates the paper's Figures 4 and 5: assemble a
// fixed, uneven (soil-like) community on increasing virtual node counts and
// print the strong-scaling curve (speedup and efficiency in simulated
// seconds) plus the per-stage runtime breakdown.
//
// By default it sweeps 2, 4, 8 and 16 nodes (8–64 ranks at 4 ranks per
// node). Pass node counts as arguments to sweep other machine sizes — the
// pooled scheduler makes even P=4096 cheap to simulate on a laptop:
//
//	go run ./examples/wetlands_scaling 256 1024   # P=1024, P=4096
package main

import (
	"fmt"
	"os"
	"strconv"

	"mhmgo/internal/core"
	"mhmgo/internal/pgas"
	"mhmgo/internal/sim"
)

func main() {
	nodeCounts := []int{2, 4, 8, 16}
	if args := os.Args[1:]; len(args) > 0 {
		nodeCounts = nodeCounts[:0]
		for _, a := range args {
			n, err := strconv.Atoi(a)
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "usage: wetlands_scaling [node counts...]; bad node count %q\n", a)
				os.Exit(2)
			}
			nodeCounts = append(nodeCounts, n)
		}
	}

	comm := sim.WetlandsLikeCommunity(48, 0.5, 7)
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen: 100, InsertSize: 280, InsertStd: 25, ErrorRate: 0.01, Coverage: 12, Seed: 8,
	})
	fmt.Printf("Wetlands-like subset: %d organisms, %d bases, %d reads\n",
		len(comm.Genomes), comm.TotalBases(), len(reads))

	const ranksPerNode = 4
	var baseline float64
	fmt.Println("Nodes  Ranks  SimSeconds  Speedup  Efficiency")
	for _, nodes := range nodeCounts {
		cfg := core.DefaultConfig(nodes * ranksPerNode)
		cfg.RanksPerNode = ranksPerNode
		res, err := core.Assemble(reads, cfg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if baseline == 0 {
			baseline = res.SimSeconds * float64(nodes) // first point is the reference
		}
		speedup := baseline / res.SimSeconds
		eff := speedup / float64(nodes)
		fmt.Printf("%-6d %-6d %-11.4f %-8.2f %.2f\n", nodes, nodes*ranksPerNode, res.SimSeconds, speedup, eff)
		fmt.Print("       stages:")
		for _, st := range pgas.SortStages(res.Stages) {
			fmt.Printf(" %s=%.3fs", st.Name, st.Seconds)
		}
		fmt.Println()
	}
}
