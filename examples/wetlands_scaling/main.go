// Wetlands_scaling demonstrates the paper's Figures 4 and 5: assemble a
// fixed, uneven (soil-like) community on increasing virtual node counts and
// print the strong-scaling curve (speedup and efficiency in simulated
// seconds) plus the per-stage runtime breakdown.
package main

import (
	"fmt"

	"mhmgo/internal/core"
	"mhmgo/internal/pgas"
	"mhmgo/internal/sim"
)

func main() {
	comm := sim.WetlandsLikeCommunity(48, 0.5, 7)
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen: 100, InsertSize: 280, InsertStd: 25, ErrorRate: 0.01, Coverage: 12, Seed: 8,
	})
	fmt.Printf("Wetlands-like subset: %d organisms, %d bases, %d reads\n",
		len(comm.Genomes), comm.TotalBases(), len(reads))

	const ranksPerNode = 4
	var baseline float64
	fmt.Println("Nodes  Ranks  SimSeconds  Speedup  Efficiency")
	for _, nodes := range []int{2, 4, 8, 16} {
		cfg := core.DefaultConfig(nodes * ranksPerNode)
		cfg.RanksPerNode = ranksPerNode
		res, err := core.Assemble(reads, cfg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if baseline == 0 {
			baseline = res.SimSeconds * float64(nodes) // first point is the reference
		}
		speedup := baseline / res.SimSeconds
		eff := speedup / float64(nodes)
		fmt.Printf("%-6d %-6d %-11.4f %-8.2f %.2f\n", nodes, nodes*ranksPerNode, res.SimSeconds, speedup, eff)
		fmt.Print("       stages:")
		for _, st := range pgas.SortStages(res.Stages) {
			fmt.Printf(" %s=%.3fs", st.Name, st.Seconds)
		}
		fmt.Println()
	}
}
