// Multi-sample co-assembly with per-sample abundance recovery: simulate
// four time-series samples of one community whose rarest organism is too
// shallow in any single sample to assemble (its per-sample depth sits below
// the assembler's error-filter threshold), co-assemble the pooled reads,
// and show that the union recovers the rare genome while the best single
// sample cannot. The per-sample abundance profile is then recovered from
// the co-assembly by read localization — the scenario TUTORIAL.md walks
// through.
package main

import (
	"fmt"
	"log"

	"mhmgo"
)

func main() {
	// 1. The canonical co-assembly scenario: three common organisms plus one
	//    rare one at 4% abundance, sequenced as four time-series samples that
	//    split the coverage budget.
	const numSamples = 4
	comm, readCfg := mhmgo.CoassemblyScenario(numSamples, 42)
	reads := mhmgo.SimulateReads(comm, readCfg)
	norm := readCfg.Normalized()
	names := make([]string, len(norm.Samples))
	for i, s := range norm.Samples {
		names[i] = s.Name
	}
	rare := comm.Genomes[0]
	for _, g := range comm.Genomes {
		if g.Abundance < rare.Abundance {
			rare = g
		}
	}
	fmt.Printf("community: %d genomes; rare genome %s at %.0f%% abundance; %d reads across %d samples\n",
		len(comm.Genomes), rare.Name, 100*rare.Abundance, len(reads), numSamples)

	cfg := mhmgo.DefaultConfig(4)
	cfg.KMin, cfg.KMax, cfg.KStep = 21, 33, 12
	cfg.InsertSize, cfg.InsertStd = 280, 25

	rareFraction := func(rd []mhmgo.Read) (*mhmgo.Result, float64) {
		res, err := mhmgo.Assemble(rd, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep := mhmgo.Evaluate("run", res.FinalSequences(), comm)
		for _, g := range rep.PerGenome {
			if g.Name == rare.Name {
				return res, g.GenomeFraction
			}
		}
		return res, 0
	}

	// 2. Each sample alone: the rare genome's per-sample depth is below the
	//    k-mer error filter, so its coverage stays fragmentary.
	perSample := make([][]mhmgo.Read, numSamples)
	for _, r := range reads {
		perSample[r.SampleID] = append(perSample[r.SampleID], r)
	}
	best := 0.0
	for si, sub := range perSample {
		_, frac := rareFraction(sub)
		fmt.Printf("sample %-4s alone: rare genome %5.1f%% recovered (%d reads)\n",
			names[si], 100*frac, len(sub))
		if frac > best {
			best = frac
		}
	}

	// 3. The co-assembly: pooling the union of all samples' reads lifts the
	//    rare genome's depth above the filter, and it assembles.
	coRes, coFrac := rareFraction(reads)
	fmt.Printf("co-assembly of all samples: rare genome %5.1f%% recovered (best single sample: %5.1f%%)\n",
		100*coFrac, 100*best)

	// 4. Per-sample abundance recovery: localize every read back onto the
	//    co-assembled sequences and roll the counts up per genome. Each
	//    sample keeps its own abundance profile even though all samples were
	//    assembled together.
	fmt.Print(mhmgo.FormatAbundanceTable(
		mhmgo.SampleAbundances(coRes.FinalSequences(), reads, names, comm)))
}
