// Multi-library round-based scaffolding: simulate a community sequenced
// with a short-insert (300 bp) paired-end library plus a long-insert
// (1500 bp) jumping library, assemble it with one scaffolding round per
// library (ascending insert size, each round's scaffolds re-entering as the
// next round's contigs), and compare against the legacy single-library
// treatment of the same reads — the scenario TUTORIAL.md walks through.
package main

import (
	"fmt"
	"log"

	"mhmgo"
)

func main() {
	// 1. A community whose genomes are long enough for a 1500 bp jumping
	//    library to span real gaps.
	commCfg := mhmgo.DefaultCommunityConfig()
	commCfg.NumGenomes = 4
	commCfg.MeanGenomeLen = 12000
	comm := mhmgo.SimulateCommunity(commCfg)

	// 2. Two libraries: pe300 carries 75% of the coverage, mp1500 the rest.
	readCfg := mhmgo.TwoLibraryReadConfig(16, 5)
	reads := mhmgo.SimulateReads(comm, readCfg)
	norm := readCfg.Normalized()
	fmt.Printf("community: %d genomes, %d bases; %d reads across %d libraries\n",
		len(comm.Genomes), comm.TotalBases(), len(reads), len(norm.Libraries))

	// 3. Assemble with a library list matching the simulation (same order,
	//    same geometry): scaffolding runs one round per library.
	cfg := mhmgo.DefaultConfig(8)
	for _, lib := range norm.Libraries {
		cfg.Libraries = append(cfg.Libraries, mhmgo.Library{
			Name: lib.Name, ReadLen: lib.ReadLen,
			InsertSize: lib.InsertSize, InsertStd: lib.InsertStd,
		})
	}
	multiRes, err := mhmgo.Assemble(reads, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range multiRes.ScaffoldRounds {
		fmt.Printf("round %-8s insert=%-5d contigs_in=%-4d scaffolds=%-4d links=%d\n",
			r.Library, r.InsertSize, r.InputContigs, r.Scaffolds, r.AcceptedLinks)
	}

	// 4. The legacy baseline: the same reads with the one-library shorthand,
	//    which applies the 300 bp geometry to every pair (the jumping pairs'
	//    gap estimates come out wrong, poisoning the link table).
	base := mhmgo.DefaultConfig(8)
	base.InsertSize, base.InsertStd = 300, 30
	baseRes, err := mhmgo.Assemble(reads, base)
	if err != nil {
		log.Fatal(err)
	}

	multiRep := mhmgo.Evaluate("two libraries", multiRes.FinalSequences(), comm)
	baseRep := mhmgo.Evaluate("single library", baseRes.FinalSequences(), comm)
	fmt.Printf("%-16s scaffolds=%-4d N50=%-6d genome fraction=%.1f%%\n",
		"single library", len(baseRes.Scaffolds), baseRep.N50, 100*baseRep.GenomeFraction)
	fmt.Printf("%-16s scaffolds=%-4d N50=%-6d genome fraction=%.1f%%\n",
		"two libraries", len(multiRes.Scaffolds), multiRep.N50, 100*multiRep.GenomeFraction)
}
