// MG64 demonstrates the paper's Table I quality evaluation: assemble an
// MG64-like synthetic community (64 genomes, skewed abundances) with
// MetaHipMer-Go and the baseline assembler proxies, and print a
// Table-I-style comparison of genome fraction, misassemblies, rRNA recovery
// and N50.
package main

import (
	"fmt"

	"mhmgo/internal/baseline"
	"mhmgo/internal/eval"
	"mhmgo/internal/hmm"
	"mhmgo/internal/sim"
)

func main() {
	// A scaled-down MG64: 64 genomes with skewed abundances.
	comm := sim.MG64LikeCommunity(0.25, 42)
	reads := sim.SimulateReads(comm, sim.ReadConfig{
		ReadLen: 100, InsertSize: 280, InsertStd: 25, ErrorRate: 0.01, Coverage: 10, Seed: 43,
	})
	profile := hmm.BuildProfile([][]byte{comm.RRNAMarker}, 0.9)
	fmt.Printf("MG64-like community: %d genomes, %d bases, %d reads\n",
		len(comm.Genomes), comm.TotalBases(), len(reads))

	eopts := eval.DefaultOptions()
	eopts.LengthThresholds = []int{1000, 2000, 2500}
	eopts.RRNAProfile = profile

	var reports []eval.Report
	for _, assembler := range baseline.All() {
		res, err := baseline.Run(assembler, reads, baseline.RunOptions{
			Ranks: 8, RanksPerNode: 4, InsertSize: 280, RRNAProfile: profile,
		})
		if err != nil {
			fmt.Printf("%s failed: %v\n", assembler.Name, err)
			continue
		}
		rep := eval.Evaluate(assembler.Name, res.FinalSequences(), comm, eopts)
		rep.RuntimeSimSecs = res.SimSeconds
		reports = append(reports, rep)
		fmt.Printf("%-12s done: %d sequences, simulated %.2fs\n", assembler.Name, rep.NumSeqs, res.SimSeconds)
	}
	fmt.Println()
	fmt.Print(eval.FormatTable(reports, eopts.LengthThresholds))
}
