package mhmgo_test

import (
	"fmt"
	"log"

	"mhmgo"
)

// ExampleAssemble runs the full pipeline — iterative de Bruijn contig
// generation plus scaffolding — over a small simulated community and
// evaluates the result against the known references.
func ExampleAssemble() {
	// Simulate a small metagenome with known ground truth.
	commCfg := mhmgo.DefaultCommunityConfig()
	commCfg.NumGenomes = 3
	commCfg.MeanGenomeLen = 4000
	comm := mhmgo.SimulateCommunity(commCfg)

	readCfg := mhmgo.DefaultReadConfig()
	readCfg.Coverage = 12
	reads := mhmgo.SimulateReads(comm, readCfg)

	// Assemble on a 4-rank virtual PGAS machine.
	cfg := mhmgo.DefaultConfig(4)
	result, err := mhmgo.Assemble(reads, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Score the assembly against the references it was simulated from.
	report := mhmgo.Evaluate("example", result.FinalSequences(), comm)
	fmt.Println("assembled sequences:", len(result.FinalSequences()) > 0)
	fmt.Println("genome fraction > 80%:", report.GenomeFraction > 0.8)
	// Output:
	// assembled sequences: true
	// genome fraction > 80%: true
}
