package mhmgo_test

import (
	"math"
	"testing"

	"mhmgo"
)

// coassemblyConfig is the assembly configuration every co-assembly test and
// benchmark uses for the CoassemblyScenario read geometry.
func coassemblyConfig(ranks int) mhmgo.Config {
	cfg := mhmgo.DefaultConfig(ranks)
	cfg.KMin, cfg.KMax, cfg.KStep = 21, 33, 12
	cfg.InsertSize, cfg.InsertStd = 280, 25
	return cfg
}

// rareGenome returns the index of the community's lowest-abundance genome.
func rareGenome(comm *mhmgo.Community) int {
	rare := 0
	for i, g := range comm.Genomes {
		if g.Abundance < comm.Genomes[rare].Abundance {
			rare = i
		}
	}
	return rare
}

// splitBySample partitions a co-assembly read set by SampleID.
func splitBySample(reads []mhmgo.Read, n int) [][]mhmgo.Read {
	out := make([][]mhmgo.Read, n)
	for _, r := range reads {
		out[r.SampleID] = append(out[r.SampleID], r)
	}
	return out
}

// genomeFraction extracts one genome's reference coverage from a report.
func genomeFraction(rep mhmgo.QualityReport, name string) float64 {
	for _, g := range rep.PerGenome {
		if g.Name == name {
			return g.GenomeFraction
		}
	}
	return 0
}

// TestCoassemblyRecoversLowAbundance is the acceptance scenario for
// multi-sample co-assembly: in the CoassemblyScenario community the rare
// organism's per-sample depth sits below the assembler's error-filter
// threshold, so no single sample assembles it — but pooling all four
// samples' reads into one co-assembly recovers most of it. The co-assembly's
// rare-genome reference coverage must strictly exceed the best single
// sample's, by a wide margin.
func TestCoassemblyRecoversLowAbundance(t *testing.T) {
	const numSamples = 4
	comm, rc := mhmgo.CoassemblyScenario(numSamples, 42)
	reads := mhmgo.SimulateReads(comm, rc)
	rare := comm.Genomes[rareGenome(comm)].Name
	cfg := coassemblyConfig(4)

	coRes, err := mhmgo.Assemble(reads, cfg)
	if err != nil {
		t.Fatalf("co-assembly: %v", err)
	}
	coFrac := genomeFraction(mhmgo.Evaluate("coassembly", coRes.FinalSequences(), comm), rare)

	best := 0.0
	for si, sub := range splitBySample(reads, numSamples) {
		if len(sub) == 0 {
			t.Fatalf("sample %d contributed no reads", si)
		}
		res, err := mhmgo.Assemble(sub, cfg)
		if err != nil {
			t.Fatalf("sample %d assembly: %v", si, err)
		}
		frac := genomeFraction(mhmgo.Evaluate("single", res.FinalSequences(), comm), rare)
		t.Logf("sample %d alone: rare-genome fraction %.3f (%d reads)", si, frac, len(sub))
		if frac > best {
			best = frac
		}
	}
	t.Logf("co-assembly rare-genome fraction %.3f vs best single sample %.3f (margin %.3f)",
		coFrac, best, coFrac-best)

	if coFrac <= best {
		t.Fatalf("co-assembly rare-genome fraction %.3f does not exceed best single sample %.3f", coFrac, best)
	}
	// The gap is the point of the scenario, not a rounding artifact: the
	// probe run recovers 0.93 co-assembled vs 0.16 for the best sample.
	if coFrac-best < 0.25 {
		t.Errorf("co-assembly margin %.3f over the best single sample is too thin; scenario calibration drifted",
			coFrac-best)
	}

	// The per-sample abundance layer must see the same story on the
	// co-assembly: every sample's reads localize, estimates are unit-sum,
	// and the rare genome is estimated rarest in every sample.
	names := make([]string, numSamples)
	for i, s := range rc.Normalized().Samples {
		names[i] = s.Name
	}
	abundances := mhmgo.SampleAbundances(coRes.FinalSequences(), reads, names, comm)
	if len(abundances) != numSamples {
		t.Fatalf("abundance report covers %d samples, want %d", len(abundances), numSamples)
	}
	for _, sa := range abundances {
		if sa.Localized == 0 {
			t.Errorf("sample %s localized no reads onto the co-assembly", sa.Sample)
			continue
		}
		var sum float64
		rareEst, maxEst := 0.0, 0.0
		for _, g := range sa.PerGenome {
			sum += g.Abundance
			if g.Name == rare {
				rareEst = g.Abundance
			} else if g.Abundance > maxEst {
				maxEst = g.Abundance
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("sample %s abundance estimates sum to %v, want 1", sa.Sample, sum)
		}
		if rareEst >= maxEst {
			t.Errorf("sample %s estimates the rare genome at %.3f, not below the common genomes' max %.3f",
				sa.Sample, rareEst, maxEst)
		}
	}
}
