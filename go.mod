module mhmgo

go 1.24
