package mhmgo_test

// Documentation integrity checks, run by the CI docs job: every relative
// markdown link in the project documents must resolve to a file in the
// repository, and every example program must carry a doc comment naming
// what it demonstrates.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the project documents whose links must stay valid.
var docFiles = []string{"README.md", "DESIGN.md", "TUTORIAL.md", "PAPER.md", "ROADMAP.md", "CHANGES.md"}

// mdLink matches inline markdown links [text](target). Reference-style
// links are not used in this repository.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsLinksResolve verifies that every relative link in the project
// markdown files points at an existing file.
func TestDocsLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v (README/DESIGN/TUTORIAL/PAPER must exist)", doc, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external links are not checked offline
			}
			// Strip an in-file anchor; a bare anchor refers to this file.
			if i := strings.Index(target, "#"); i >= 0 {
				target = target[:i]
				if target == "" {
					continue
				}
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken relative link %q", doc, m[1])
			}
		}
	}
}

// TestDocsRequiredCrossLinks pins the documentation topology: the README
// must lead readers to the tutorial and the paper map, and the tutorial
// must point back into the design notes.
func TestDocsRequiredCrossLinks(t *testing.T) {
	requirements := map[string][]string{
		"README.md":   {"TUTORIAL.md", "DESIGN.md", "PAPER.md"},
		"TUTORIAL.md": {"DESIGN.md", "PAPER.md"},
		"PAPER.md":    {"DESIGN.md", "TUTORIAL.md"},
	}
	for doc, wants := range requirements {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, want := range wants {
			if !strings.Contains(string(data), want) {
				t.Errorf("%s must reference %s", doc, want)
			}
		}
	}
	// The checkpoint/restart documentation must stay present: the design
	// notes own the manifest format and failure-mode table, the tutorial
	// owns the kill-and-resume walkthrough, and the tutorial section points
	// back at the design section.
	sections := map[string][]string{
		"DESIGN.md": {"## 8. Checkpoint/restart and run provenance",
			"MANIFEST.json", "FailAtBarrier", "ErrCorruptShard",
			// The pooled-scheduler documentation: the design notes own the
			// execution-vs-simulation separation and the O(P) collective
			// rules.
			"### Pooled scheduler", "Config.Workers", "bit-identical",
			"BENCH_wallclock.json",
			// The packed-kernel documentation: the design notes own the
			// representation, the word-at-a-time tricks and the
			// bit-identity rule.
			"## 9. Packed 2-bit sequences and word-at-a-time kernels",
			"seq.Packed", "MismatchCount", "FuzzPackedRoundTrip",
			"BENCH_kernels.json",
			// The serving-layer documentation: the design notes own the
			// admission policy, the lifecycle state machine and the
			// cancellation/abort wiring.
			"## 10. Assembly as a service: admission control and the job lifecycle",
			"head-of-line", "Retry-After", "AbortOnCancel",
			"TestServeConcurrentJobsRace", "FuzzJobSpecDecode",
			// The co-assembly documentation: the design notes own the
			// sample-vs-library distinction, the shorthand-equivalence
			// contract, and why abundance is recovered from localization
			// counts.
			"## 11. Multi-sample co-assembly",
			"SampleID", "TestSingleSampleShorthandEquivalence",
			"MinKmerCount", "AbundanceReport", "ErrInputMismatch",
			"TestCoassemblyRecoversLowAbundance", "FuzzSampleConfigNormalize",
			"BENCH_coassembly.json"},
		"TUTORIAL.md": {"## 6. Surviving a mid-run kill",
			"-fail-after-stage", "manifest head", "DESIGN.md) §8",
			// The tutorial owns the practical guidance on -workers and the
			// wall-clock trajectory file.
			"-workers", "BENCH_wallclock.json", "max_feasible_ranks",
			// ... and on the per-kernel trajectory file and the pprof
			// flags.
			"### Reading `BENCH_kernels.json` and profiling a run",
			"packed_ns_per_op", "speedup_x", "-cpuprofile", "-memprofile",
			// The tutorial owns the serving walkthrough: submit, stream,
			// fetch, and the load generator.
			"## 8. Serving assemblies", "mhmserve", "/v1/jobs",
			"DESIGN.md) §10", "BENCH_serve.json",
			// The tutorial owns the co-assembly walkthrough: simulate the
			// time series, co-assemble the union, recover the abundances.
			"## 9. Multi-sample co-assembly", "-samples", "-sample-drift",
			"-sample-reads", "DESIGN.md) §11", "examples/coassembly",
			"BENCH_coassembly.json"},
	}
	for doc, wants := range sections {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, want := range wants {
			if !strings.Contains(string(data), want) {
				t.Errorf("%s must keep the checkpoint/restart documentation (missing %q)", doc, want)
			}
		}
	}
}

// TestExamplesHaveDocComments verifies every example program opens with a
// doc comment naming what it demonstrates.
func TestExamplesHaveDocComments(t *testing.T) {
	mains, err := filepath.Glob("examples/*/main.go")
	if err != nil || len(mains) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, path := range mains {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(data), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "// ") {
			t.Errorf("%s must open with a doc comment naming what it demonstrates", path)
			continue
		}
		// The comment must be a doc comment: contiguous with `package main`.
		pkgLine := -1
		for i, l := range lines {
			if strings.HasPrefix(l, "package ") {
				pkgLine = i
				break
			}
		}
		if pkgLine < 1 {
			t.Errorf("%s: no package clause found", path)
			continue
		}
		for i := 0; i < pkgLine; i++ {
			if strings.TrimSpace(lines[i]) == "" || !strings.HasPrefix(lines[i], "//") {
				t.Errorf("%s: the opening comment is not a doc comment (blank or non-comment line %d before the package clause)", path, i+1)
				break
			}
		}
	}
}
